package experiments

import (
	"reflect"
	"testing"

	"repro/internal/fault"
)

// faultQuickOpts trims the campaign grid enough that the determinism
// matrix (parallelism × replay) stays fast.
func faultQuickOpts() Options {
	return Options{
		Insns:      30_000,
		Benchmarks: []string{"bzip2", "mesa"},
	}
}

// TestFaultsDeterministic: the campaign table is a pure function of its
// inputs — worker count and the trace-replay fast path must not change a
// single counter. This is the property that makes fault campaigns
// reviewable artifacts rather than one-off observations.
func TestFaultsDeterministic(t *testing.T) {
	variants := []struct {
		name string
		opts Options
	}{
		{"serial", func() Options { o := faultQuickOpts(); o.Parallelism = 1; return o }()},
		{"parallel-8", func() Options { o := faultQuickOpts(); o.Parallelism = 8; return o }()},
		{"no-replay", func() Options {
			o := faultQuickOpts()
			o.Parallelism = 8
			o.DisableReplay = true
			return o
		}()},
	}
	var ref []FaultRow
	for _, v := range variants {
		rows, _, err := Faults(v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if ref == nil {
			ref = rows
			continue
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Errorf("%s: fault table differs from the serial reference\n got %+v\nwant %+v",
				v.name, rows, ref)
		}
	}
}

// TestRecoveryShape: the recovery-overhead sweep produces one row per
// campaign×rate with sane accounting — fault-free baselines present,
// detections at the sustained rate, repair windows behind every MTTR, and
// zero silent corruptions anywhere (every run is oracle-verified).
func TestRecoveryShape(t *testing.T) {
	opts := faultQuickOpts()
	rows, tbl, err := Recovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(faultCampaigns()) * len(RecoveryRates())
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d (6 campaigns x 3 rates)", len(rows), want)
	}
	if tbl == nil {
		t.Fatal("no table rendered")
	}
	for _, r := range rows {
		label := string(r.Mode) + "/" + string(r.Site)
		if r.BaseIPC <= 0 {
			t.Errorf("%s @ %g: BaseIPC %.3f, want > 0", label, r.Rate, r.BaseIPC)
		}
		if r.IPC <= 0 {
			t.Errorf("%s @ %g: IPC %.3f, want > 0", label, r.Rate, r.IPC)
		}
		if r.Silent != 0 {
			t.Errorf("%s @ %g: %d silent corruptions under the oracle", label, r.Rate, r.Silent)
		}
		if r.Repairs > r.Recoveries {
			t.Errorf("%s @ %g: repairs %d exceed recoveries %d", label, r.Rate, r.Repairs, r.Recoveries)
		}
		if r.Repairs > 0 && r.MTTR() < 1 {
			t.Errorf("%s @ %g: MTTR %.2f with %d repairs", label, r.Rate, r.MTTR(), r.Repairs)
		}
		// At the sustained-assault rate the directly-struck compute sites
		// must actually exercise recovery.
		if r.Rate == 1e-3 && (r.Site == fault.FU || r.Site == fault.Forward) {
			if r.Detected == 0 || r.Recoveries == 0 {
				t.Errorf("%s @ %g: detected %d, recovered %d — campaign never exercised recovery",
					label, r.Rate, r.Detected, r.Recoveries)
			}
		}
	}
}
