// Package backoff is the repository's one retry-delay policy: capped
// exponential growth with multiplicative jitter. Every layer that asks a
// caller to come back later — the admission controller's Retry-After
// header, the fabric coordinator re-queueing a cell whose lease expired,
// the worker client backing off a flaky coordinator — derives its delay
// here, so retries de-synchronize instead of thundering back in lockstep.
//
// Jitter draws from a caller-owned seeded generator, never the global
// math/rand: the same seed replays the same delay schedule, which is what
// lets the fabric's retry paths stay under the determinism lint and lets
// tests assert exact schedules.
package backoff

import (
	"math/rand/v2"
	"strconv"
	"time"
)

// Policy shapes a retry schedule. The zero value is not useful; start
// from Default and override fields as needed.
type Policy struct {
	// Base is the attempt-0 delay.
	Base time.Duration
	// Cap bounds the grown delay before jitter is applied.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier (values below 1 are
	// treated as 1: constant delay).
	Factor float64
	// Jitter is the total width of the multiplicative jitter band,
	// centered on 1: a delay d becomes uniform in
	// [d*(1-Jitter/2), d*(1+Jitter/2)). 0 disables jitter; values are
	// clamped to [0, 1].
	Jitter float64
}

// Default is the fleet-wide schedule: 100ms doubling to a 10s cap with a
// ±25% jitter band.
func Default() Policy {
	return Policy{Base: 100 * time.Millisecond, Cap: 10 * time.Second, Factor: 2, Jitter: 0.5}
}

// Delay returns the jittered delay for the given zero-based attempt.
// rng supplies the jitter draw and may be nil, which disables jitter —
// callers that need de-synchronization must pass their seeded generator.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	base := p.Base
	if base <= 0 {
		base = time.Millisecond
	}
	factor := p.Factor
	if factor < 1 {
		factor = 1
	}
	cap := p.Cap
	if cap < base {
		cap = base
	}
	d := float64(base)
	limit := float64(cap)
	for i := 0; i < attempt && d < limit; i++ {
		d *= factor
	}
	if d > limit {
		d = limit
	}
	if rng != nil && p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		d *= 1 - j/2 + j*rng.Float64()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// RetryAfter renders a delay as an HTTP Retry-After header value: whole
// seconds, rounded up, at least 1 — the header's granularity is seconds,
// and "0" would invite an immediate, un-backed-off retry.
func RetryAfter(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// ParseRetryAfter reads a Retry-After header's delay-seconds form. The
// HTTP-date form is not supported; it reports ok=false and the caller
// falls back to its own schedule.
func ParseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.ParseInt(h, 10, 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
