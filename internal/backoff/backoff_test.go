package backoff

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second, // capped from here on
		time.Second,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w {
			t.Errorf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
	if got := p.Delay(-3, nil); got != 100*time.Millisecond {
		t.Errorf("negative attempt: delay %v, want base", got)
	}
}

func TestDelayJitterBandAndDeterminism(t *testing.T) {
	p := Policy{Base: time.Second, Cap: time.Second, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewPCG(7, 0))
	lo, hi := 750*time.Millisecond, 1250*time.Millisecond
	var first []time.Duration
	for i := 0; i < 200; i++ {
		d := p.Delay(3, rng)
		if d < lo || d >= hi {
			t.Fatalf("jittered delay %v outside [%v, %v)", d, lo, hi)
		}
		first = append(first, d)
	}
	// Same seed, same schedule: the jitter is replayable.
	rng = rand.New(rand.NewPCG(7, 0))
	for i, w := range first {
		if d := p.Delay(3, rng); d != w {
			t.Fatalf("replayed delay %d: %v, want %v", i, d, w)
		}
	}
}

func TestDelayZeroPolicyIsSane(t *testing.T) {
	var p Policy
	if d := p.Delay(10, nil); d <= 0 {
		t.Fatalf("zero policy delay %v, want > 0", d)
	}
}

func TestRetryAfterRoundsUpAndFloorsAtOne(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	}
	for _, c := range cases {
		if got := RetryAfter(c.d); got != c.want {
			t.Errorf("RetryAfter(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := ParseRetryAfter("3"); !ok || d != 3*time.Second {
		t.Errorf("ParseRetryAfter(3) = %v, %t", d, ok)
	}
	for _, bad := range []string{"", "-1", "soon", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		if _, ok := ParseRetryAfter(bad); ok {
			t.Errorf("ParseRetryAfter(%q) accepted", bad)
		}
	}
}
