package chaostest

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, strings.Repeat("x", 4096))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFaultsFireAndAreCounted: with nonzero probabilities the transport
// injects drops and body cuts, and its counters account for every request.
func TestFaultsFireAndAreCounted(t *testing.T) {
	ts := newBackend(t)
	tr := New(42, nil)
	tr.DropProb = 0.3
	tr.CutBodyProb = 0.3
	client := &http.Client{Transport: tr}

	const n = 100
	var dropped, cut, whole int
	for i := 0; i < n; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			if !strings.Contains(err.Error(), ErrDropped.Error()) {
				t.Fatalf("request %d: unexpected error %v", i, err)
			}
			dropped++
			continue
		}
		_, rerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if rerr != nil {
			cut++
		} else {
			whole++
		}
	}
	drops, cuts, _, sent := tr.Counts()
	if dropped == 0 || cut == 0 || whole == 0 {
		t.Fatalf("fault mix degenerate: dropped=%d cut=%d whole=%d", dropped, cut, whole)
	}
	if drops != dropped || cuts != cut || drops+sent != n {
		t.Fatalf("counters disagree: drops=%d/%d cuts=%d/%d sent=%d", drops, dropped, cuts, cut, sent)
	}
}

// TestSeedReplaysSchedule: the same seed produces the same drop/cut
// decisions in the same order.
func TestSeedReplaysSchedule(t *testing.T) {
	ts := newBackend(t)
	run := func(seed uint64) []string {
		tr := New(seed, nil)
		tr.DropProb = 0.4
		tr.CutBodyProb = 0.4
		client := &http.Client{Transport: tr}
		var outcomes []string
		for i := 0; i < 40; i++ {
			resp, err := client.Get(ts.URL)
			switch {
			case err != nil:
				outcomes = append(outcomes, "drop")
			default:
				_, rerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if rerr != nil {
					outcomes = append(outcomes, "cut")
				} else {
					outcomes = append(outcomes, "ok")
				}
			}
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at request %d: %v vs %v", i, a, b)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestCutBodySurfacesMidRead: a cut body yields a strict prefix and then
// an error wrapping ErrBodyCut, never a clean EOF with short content.
func TestCutBodySurfacesMidRead(t *testing.T) {
	ts := newBackend(t)
	tr := New(3, nil)
	tr.CutBodyProb = 1
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, rerr := io.Copy(io.Discard, resp.Body)
	if rerr == nil {
		t.Fatalf("read %d bytes with no error, want mid-stream cut", n)
	}
	if !errors.Is(rerr, ErrBodyCut) && !strings.Contains(rerr.Error(), ErrBodyCut.Error()) {
		t.Fatalf("cut error %v does not identify ErrBodyCut", rerr)
	}
	if n >= 4096 {
		t.Fatalf("cut after %d bytes, want a strict prefix of 4096", n)
	}
}

// TestZeroProbabilityIsTransparent: with all faults off the transport
// passes everything through untouched.
func TestZeroProbabilityIsTransparent(t *testing.T) {
	ts := newBackend(t)
	client := &http.Client{Transport: New(1, nil)}
	for i := 0; i < 10; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		n, rerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if rerr != nil || n != 4096 {
			t.Fatalf("transparent pass-through read %d bytes, err %v", n, rerr)
		}
	}
}
