// Package a is lint-test input: every line expecting a nopanic finding
// carries a `// want` comment, in the style of x/tools analysistest.
package a

import "fmt"

func Exported(x int) {
	if x < 0 {
		panic("negative") // want `panic in Exported`
	}
}

func unexported() {
	panic(fmt.Sprintf("boom")) // want `panic in unexported`
}

type T struct{}

func (t *T) Method() {
	panic("method") // want `panic in T.Method`
}

func AnnotatedSameLine(x int) {
	if x < 0 {
		panic("impossible") //nopanic:invariant callers validate x
	}
}

func AnnotatedLineAbove(x int) {
	if x < 0 {
		//nopanic:invariant callers validate x
		panic("impossible")
	}
}

func NestedClosure() {
	f := func() {
		panic("closure") // want `panic in NestedClosure`
	}
	f()
}

func ShadowedBuiltin() {
	panic := func(string) {}
	panic("not the builtin")
}

func NotAPanic() {
	fmt.Println("panic(\"in a string literal\")")
}
