// Package trb implements the trace reuse buffer behind the DIE-TRB mode:
// the IRB generalized from single instructions to straight-line windows of
// a basic block. Where the IRB memoizes one instruction's (operands →
// result) and lets a duplicate skip one ALU slot, the TRB memoizes a whole
// window's output signatures keyed by its entry PC and the values of its
// live-in registers. When the duplicate stream re-enters the window with
// matching live-ins, every duplicate in the window is served its recorded
// signature — one lookup amortized over the window length, the
// trace-level concentration of reuse that Coppieters et al. observe in
// loop structures.
//
// Soundness is split between static analysis and the buffer:
//
//   - analysis.TraceBlocks only emits windows whose output signatures are
//     a pure function of (entry PC, live-in values) — no in-window
//     consumption of loaded values, straight-line within one block;
//   - the buffer re-checks every recorded live-in value on lookup, so a
//     hit can only be served for the exact machine state the window was
//     recorded under. A stale or aliased entry value-misses; it can never
//     produce a false hit.
//
// The buffer is direct-mapped by entry PC with flat backing arrays and an
// allocation-free lookup. Unlike the IRB there is no port model: the TRB
// is probed once per window entry (vs the IRB's once per duplicate
// instruction), a rate far below any realistic port budget, so modeling
// contention would only add dead configuration surface. The pipelined
// access depth is still charged, as LookupLat cycles from window entry to
// the first served signature.
package trb

import (
	"errors"
	"fmt"
)

// ErrConfig is wrapped by every configuration validation error.
var ErrConfig = errors.New("trb: invalid configuration")

// Config sizes the trace reuse buffer.
type Config struct {
	// Entries is the number of direct-mapped buffer entries (power of
	// two), each holding one window recording.
	Entries int

	// MaxBlockLen caps the window length in instructions; it sizes the
	// per-entry signature array and bounds how far one hit can skip.
	MaxBlockLen int

	// MaxLiveIn caps the live-in register count per window; it sizes the
	// per-entry live-in value array.
	MaxLiveIn int

	// LookupLat is the pipelined access depth in cycles from the lookup
	// at window entry to the first signature being servable. It is
	// deeper than the IRB's (the reuse test compares MaxLiveIn values,
	// not two operands), and it is charged once per window, not per
	// instruction.
	LookupLat int
}

// Default returns the default TRB configuration: 256 entries of up to 16
// signatures keyed by up to 8 live-ins, 4-cycle pipelined access.
func Default() Config {
	return Config{Entries: 256, MaxBlockLen: 16, MaxLiveIn: 8, LookupLat: 4}
}

// Validate reports configuration errors, all wrapping ErrConfig.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("%w: Entries = %d, want power of two", ErrConfig, c.Entries)
	}
	if c.MaxBlockLen < 2 {
		return fmt.Errorf("%w: MaxBlockLen = %d, want >= 2 (a one-instruction window is the IRB)", ErrConfig, c.MaxBlockLen)
	}
	if c.MaxLiveIn < 1 {
		return fmt.Errorf("%w: MaxLiveIn = %d, want >= 1", ErrConfig, c.MaxLiveIn)
	}
	if c.LookupLat < 1 {
		return fmt.Errorf("%w: LookupLat = %d, want >= 1", ErrConfig, c.LookupLat)
	}
	return nil
}

// Stats counts TRB traffic. Hits / Lookups is the window hit rate; the
// per-instruction effect (signatures served, ALU slots skipped) is
// counted by the core, which walks the window.
type Stats struct {
	Lookups   uint64 // window-entry probes
	Hits      uint64 // probes whose tag and all live-in values matched
	TagMisses uint64 // probes that found no recording for the entry PC
	ValMisses uint64 // probes whose recorded live-in values mismatched

	Inserts     uint64 // window recordings written
	Evictions   uint64 // recordings displaced by a different entry PC
	Invalidated uint64 // recordings scrubbed after a detected fault
}

// Buffer is the trace reuse buffer: a direct-mapped table of window
// recordings over flat backing arrays.
type Buffer struct {
	cfg  Config
	tags []uint64 // entry pc+1 per slot; 0 = invalid
	blen []int32  // recorded window length per slot
	nliv []int32  // recorded live-in count per slot
	live []uint64 // Entries x MaxLiveIn live-in values
	sigs []uint64 // Entries x MaxBlockLen output signatures

	Stats Stats
}

// New builds a trace reuse buffer.
func New(cfg Config) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Buffer{
		cfg:  cfg,
		tags: make([]uint64, cfg.Entries),
		blen: make([]int32, cfg.Entries),
		nliv: make([]int32, cfg.Entries),
		live: make([]uint64, cfg.Entries*cfg.MaxLiveIn),
		sigs: make([]uint64, cfg.Entries*cfg.MaxBlockLen),
	}, nil
}

// Config returns the buffer's configuration.
func (b *Buffer) Config() Config { return b.cfg }

// Lookup probes the buffer for the window at entry pc with the current
// live-in register values. On a hit it returns the recorded output
// signatures, one per window instruction; the slice aliases the buffer's
// backing array and is valid only until the next Insert, so the caller
// must consume (or copy) it before recording anything new. A hit requires
// the tag and every recorded live-in value to match — there is no partial
// hit, so a mismatch anywhere serves nothing and the caller falls back to
// per-instruction execution.
//
//lint:hotpath
func (b *Buffer) Lookup(pc uint64, liveVals []uint64) ([]uint64, bool) {
	b.Stats.Lookups++
	i := int(pc) & (b.cfg.Entries - 1)
	if b.tags[i] != pc+1 {
		b.Stats.TagMisses++
		return nil, false
	}
	if int(b.nliv[i]) != len(liveVals) {
		b.Stats.ValMisses++
		return nil, false
	}
	base := i * b.cfg.MaxLiveIn
	for k, v := range liveVals {
		if b.live[base+k] != v {
			b.Stats.ValMisses++
			return nil, false
		}
	}
	b.Stats.Hits++
	s := i * b.cfg.MaxBlockLen
	return b.sigs[s : s+int(b.blen[i])], true
}

// Insert records a window execution: the entry pc, the live-in values it
// ran under, and the output signature of each instruction in order. It
// reports whether the recording was accepted; recordings that exceed the
// buffer's geometry are dropped (a safe, performance-only outcome — the
// core's window extractor respects the geometry, so drops only arise from
// geometry-shrinking reconfiguration or adversarial callers).
func (b *Buffer) Insert(pc uint64, liveVals, sigs []uint64) bool {
	if len(sigs) < 1 || len(sigs) > b.cfg.MaxBlockLen || len(liveVals) > b.cfg.MaxLiveIn {
		return false
	}
	i := int(pc) & (b.cfg.Entries - 1)
	if t := b.tags[i]; t != 0 && t != pc+1 {
		b.Stats.Evictions++
	}
	b.Stats.Inserts++
	b.tags[i] = pc + 1
	b.blen[i] = int32(len(sigs))
	b.nliv[i] = int32(len(liveVals))
	copy(b.live[i*b.cfg.MaxLiveIn:], liveVals)
	copy(b.sigs[i*b.cfg.MaxBlockLen:], sigs)
	return true
}

// Invalidate removes the recording for entry pc, reporting whether one
// existed. The core scrubs with it when fault recovery rewinds across a
// served window, exactly as it scrubs the IRB: the recording might have
// been taken from a corrupted execution and would re-fire
// deterministically. Invalidation consumes no buffer bandwidth — it
// rides the recovery flush, which already owns the pipeline.
func (b *Buffer) Invalidate(pc uint64) bool {
	i := int(pc) & (b.cfg.Entries - 1)
	if b.tags[i] != pc+1 {
		return false
	}
	b.tags[i] = 0
	b.blen[i] = 0
	b.nliv[i] = 0
	b.Stats.Invalidated++
	return true
}

// Probe returns copies of the recording for entry pc without touching
// statistics. Tooling and test oracles use it.
func (b *Buffer) Probe(pc uint64) (liveVals, sigs []uint64, ok bool) {
	i := int(pc) & (b.cfg.Entries - 1)
	if b.tags[i] != pc+1 {
		return nil, nil, false
	}
	liveVals = make([]uint64, b.nliv[i])
	copy(liveVals, b.live[i*b.cfg.MaxLiveIn:])
	sigs = make([]uint64, b.blen[i])
	copy(sigs, b.sigs[i*b.cfg.MaxBlockLen:])
	return liveVals, sigs, true
}
