package runner_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/irb"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// mapCache is a minimal thread-safe runner.Cache for tests.
type mapCache struct {
	mu         sync.Mutex
	m          map[string]sim.Result
	gets, hits int
	puts       int
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string]sim.Result)} }

func (c *mapCache) Get(key string) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	r, ok := c.m[key]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *mapCache) Put(key string, res sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = res
}

// TestFingerprintStability: equal jobs agree, and every input that should
// change the result changes the key.
func TestFingerprintStability(t *testing.T) {
	base := testJobs(t, []string{"bzip2"}, 5_000)[0]
	k1, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("fingerprint not stable: %s vs %s", k1, k2)
	}

	renamed := base
	renamed.Name = "other-display-name"
	if k, _ := renamed.Fingerprint(); k != k1 {
		t.Errorf("display name changed the fingerprint; it is not a simulation input")
	}

	mutate := map[string]func(j *runner.Job){
		"insns":       func(j *runner.Job) { j.Opts.Insns++ },
		"seed":        func(j *runner.Job) { j.Opts.Seed = 99 },
		"fastforward": func(j *runner.Job) { j.Opts.FastForward = 128 },
		"verify":      func(j *runner.Job) { j.Opts.Verify = true },
		"config":      func(j *runner.Job) { j.Config.RUUSize *= 2 },
		"profile":     func(j *runner.Job) { j.Profile.Iters++ },
		"injector": func(j *runner.Job) {
			inj, err := fault.New(fault.Config{Site: fault.FU, Rate: 1e-4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			j.Opts.Injector = inj
		},
	}
	for name, mut := range mutate {
		j := base
		mut(&j)
		k, err := j.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}

	// Same fault spec, fresh injector value: keys must agree.
	ja, jb := base, base
	inj1, _ := fault.New(fault.Config{Site: fault.FU, Rate: 1e-4, Seed: 7})
	inj2, _ := fault.New(fault.Config{Site: fault.FU, Rate: 1e-4, Seed: 7})
	ja.Opts.Injector, jb.Opts.Injector = inj1, inj2
	ka, _ := ja.Fingerprint()
	kb, _ := jb.Fingerprint()
	if ka != kb {
		t.Errorf("equal fault specs produced different fingerprints")
	}
}

// TestFingerprintModeKnobs: mode-specific knobs are simulation inputs, so
// cache keys must differ when a knob differs and stay byte-stable when it
// is unset — zero-valued knobs serialize to nothing, so every key minted
// before the knobs existed is still valid.
func TestFingerprintModeKnobs(t *testing.T) {
	mk := func(mode string, tweak func(*core.Config)) runner.Job {
		mi, ok := core.ModeByName(mode)
		if !ok {
			t.Fatalf("mode %q not registered", mode)
		}
		j := testJobs(t, []string{"bzip2"}, 5_000)[0]
		j.Config = mi.Base()
		if tweak != nil {
			tweak(&j.Config)
		}
		return j
	}
	fp := func(j runner.Job) string {
		t.Helper()
		k, err := j.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	rep := fp(mk("REPLAY", nil))
	if again := fp(mk("REPLAY", nil)); again != rep {
		t.Error("identical REPLAY jobs disagree on their key")
	}
	if k := fp(mk("REPLAY", func(c *core.Config) { c.ReplayEpoch = 2048 })); k == rep {
		t.Error("checkpoint interval is not part of the cache key")
	}

	tmr := fp(mk("TMR", nil))
	if k := fp(mk("TMR", func(c *core.Config) { c.VoteWidth = 5 })); k == tmr {
		t.Error("vote width is not part of the cache key")
	}

	trb := fp(mk("DIE-TRB", nil))
	if again := fp(mk("DIE-TRB", nil)); again != trb {
		t.Error("identical DIE-TRB jobs disagree on their key")
	}
	if k := fp(mk("DIE-TRB", func(c *core.Config) { c.TRBEntries = 512 })); k == trb {
		t.Error("TRB entry count is not part of the cache key")
	}
	if k := fp(mk("DIE-TRB", func(c *core.Config) { c.TRBMaxBlockLen = 8 })); k == trb {
		t.Error("TRB window length cap is not part of the cache key")
	}
	if k := fp(mk("DIE-IRB", nil)); k == trb {
		t.Error("DIE-TRB and DIE-IRB cells share a cache key")
	}

	// Byte-stability: unset knobs must vanish from the canonical payload,
	// keeping pre-knob configs' keys bit-identical.
	b, err := json.Marshal(core.BaseDIE())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"ReplayEpoch", "VoteWidth", "TRBEntries", "TRBMaxBlockLen"} {
		if strings.Contains(string(b), field) {
			t.Errorf("zero-valued %s leaks into the canonical config payload", field)
		}
	}
}

// TestFingerprintUncacheable: an injector without a spec makes the job
// uncacheable, not a panic or a silent wrong key.
func TestFingerprintUncacheable(t *testing.T) {
	j := testJobs(t, []string{"bzip2"}, 5_000)[0]
	j.Opts.Injector = opaqueInjector{}
	if _, err := j.Fingerprint(); err == nil {
		t.Fatal("want ErrUncacheable for an opaque injector, got nil")
	}
}

type opaqueInjector struct{}

func (opaqueInjector) FUResult(seq, pc uint64, dup bool, sig uint64) uint64           { return sig }
func (opaqueInjector) Operand(seq, pc uint64, dup bool, which int, val uint64) uint64 { return val }
func (opaqueInjector) AfterIRBInsert(pc uint64, b *irb.IRB)                           {}

// TestRunCacheRoundTrip: a second identical grid is served entirely from
// cache, bit-identical to the first, with CacheHit set on every cell.
func TestRunCacheRoundTrip(t *testing.T) {
	jobs := testJobs(t, []string{"bzip2"}, 5_000)
	cache := newMapCache()
	first, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].CacheHit {
			t.Fatalf("cell %d hit an empty cache", i)
		}
	}
	if cache.puts != len(jobs) {
		t.Fatalf("cache puts %d, want %d", cache.puts, len(jobs))
	}

	var progressDone int
	second, err := runner.Run(context.Background(), jobs, runner.Options{
		Parallelism: 2,
		Cache:       cache,
		Progress:    func(p runner.Progress) { progressDone = p.Done },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].CacheHit {
			t.Errorf("cell %d (%s on %s) missed a warm cache", i,
				jobs[i].Profile.Name, jobs[i].Name)
		}
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Errorf("cell %d: cached result differs from simulated result", i)
		}
	}
	if cache.puts != len(jobs) {
		t.Errorf("warm run stored %d extra results", cache.puts-len(jobs))
	}
	if progressDone != len(jobs) {
		t.Errorf("progress reached %d/%d on an all-cached run", progressDone, len(jobs))
	}

	// Cached results must not alias each other's IRB stats.
	for i := range second {
		for j := i + 1; j < len(second); j++ {
			if second[i].Result.IRB != nil && second[i].Result.IRB == second[j].Result.IRB {
				t.Fatalf("cells %d and %d share an IRB stats pointer", i, j)
			}
		}
	}
}

// TestRunCacheRewritesDisplayName: a hit keyed by an identical simulation
// under a different display name reports the requesting job's name.
func TestRunCacheRewritesDisplayName(t *testing.T) {
	jobs := testJobs(t, []string{"bzip2"}, 5_000)[:1]
	cache := newMapCache()
	if _, err := runner.Run(context.Background(), jobs, runner.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	renamed := jobs[0]
	renamed.Name = "alias"
	outs, err := runner.Run(context.Background(), []runner.Job{renamed}, runner.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].CacheHit {
		t.Fatal("renamed job missed the cache")
	}
	if outs[0].Result.Config != "alias" {
		t.Fatalf("cached result reports config %q, want %q", outs[0].Result.Config, "alias")
	}
}

// TestRunCacheSkipsUncacheable: uncacheable jobs run and are not stored.
func TestRunCacheSkipsUncacheable(t *testing.T) {
	p, _ := workload.ByName("bzip2")
	job := testJobs(t, []string{"bzip2"}, 5_000)[0]
	job.Opts.Injector = opaqueInjector{}
	job.Profile = p
	cache := newMapCache()
	outs, err := runner.Run(context.Background(), []runner.Job{job}, runner.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[0].CacheHit {
		t.Fatalf("uncacheable job: err=%v hit=%t", outs[0].Err, outs[0].CacheHit)
	}
	if cache.puts != 0 {
		t.Fatalf("uncacheable job was stored (%d puts)", cache.puts)
	}
}
