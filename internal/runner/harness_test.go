package runner

// Harness-hardening tests. These live inside the package so they can swap
// simRun for stubs that panic or hang — behaviours a real simulation only
// exhibits when something is already badly wrong.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// swapSimRun substitutes the simulation entry point for the duration of
// the test, restoring the real one afterwards.
func swapSimRun(t *testing.T, fn func(context.Context, string, core.Config, workload.Profile, sim.Options) (sim.Result, error)) {
	t.Helper()
	prev := simRun
	simRun = fn
	t.Cleanup(func() { simRun = prev })
}

func stubJobs(benches ...string) []Job {
	jobs := make([]Job, len(benches))
	for i, b := range benches {
		jobs[i] = Job{Name: "stub", Profile: workload.Profile{Name: b}}
	}
	return jobs
}

// TestWorkerPanicIsolated: a cell that panics inside the simulation is
// recorded as that cell's *CellPanicError — with the panicking stack — and
// every other cell still completes.
func TestWorkerPanicIsolated(t *testing.T) {
	swapSimRun(t, func(_ context.Context, _ string, _ core.Config, p workload.Profile, _ sim.Options) (sim.Result, error) {
		if p.Name == "poison" {
			panic("injected test panic")
		}
		return sim.Result{Bench: p.Name}, nil
	})

	jobs := stubJobs("ok1", "poison", "ok2", "ok3")
	out, err := Run(context.Background(), jobs, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("batch error nil despite a panicked cell")
	}
	var pe *CellPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("batch error %v does not wrap *CellPanicError", err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(jobs))
	}
	for _, o := range out {
		if o.Job.Profile.Name == "poison" {
			if !errors.As(o.Err, &pe) {
				t.Fatalf("poisoned cell error = %v, want *CellPanicError", o.Err)
			}
			if pe.Value != "injected test panic" {
				t.Errorf("panic value = %v", pe.Value)
			}
			if !strings.Contains(string(pe.Stack), "goroutine") {
				t.Error("panic error carries no stack trace")
			}
			continue
		}
		if o.Err != nil {
			t.Errorf("healthy cell %s failed: %v", o.Job.Profile.Name, o.Err)
		}
		if o.Result.Bench != o.Job.Profile.Name {
			t.Errorf("healthy cell %s missing its result", o.Job.Profile.Name)
		}
	}
}

// TestCellTimeoutRetriesOnce: a cell that hangs is stopped at the
// deadline, retried exactly once, then failed with *CellTimeoutError —
// which must survive Run's error filtering even though it began life as a
// context deadline.
func TestCellTimeoutRetriesOnce(t *testing.T) {
	var hangCalls atomic.Int32
	swapSimRun(t, func(ctx context.Context, _ string, _ core.Config, p workload.Profile, _ sim.Options) (sim.Result, error) {
		if p.Name == "hang" {
			hangCalls.Add(1)
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		}
		return sim.Result{Bench: p.Name}, nil
	})

	jobs := stubJobs("ok1", "hang", "ok2")
	out, err := Run(context.Background(), jobs, Options{
		Parallelism: 2,
		CellTimeout: 20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("batch error nil despite a timed-out cell")
	}
	var te *CellTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("batch error %v does not wrap *CellTimeoutError", err)
	}
	if te.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one retry)", te.Attempts)
	}
	if got := hangCalls.Load(); got != 2 {
		t.Errorf("hung cell dispatched %d times, want 2", got)
	}
	for _, o := range out {
		if o.Job.Profile.Name == "hang" {
			if !errors.As(o.Err, &te) {
				t.Errorf("hung cell error = %v, want *CellTimeoutError", o.Err)
			}
		} else if o.Err != nil {
			t.Errorf("healthy cell %s failed: %v", o.Job.Profile.Name, o.Err)
		}
	}
}

// TestSweepCancelNotMistakenForCellTimeout: cancelling the whole sweep
// while a timed cell is in flight is a cancellation, not a per-cell
// failure — no retry, and the batch error is the context's.
func TestSweepCancelNotMistakenForCellTimeout(t *testing.T) {
	var calls atomic.Int32
	started := make(chan struct{}, 16)
	swapSimRun(t, func(ctx context.Context, _ string, _ core.Config, _ workload.Profile, _ sim.Options) (sim.Result, error) {
		calls.Add(1)
		started <- struct{}{}
		<-ctx.Done()
		return sim.Result{}, ctx.Err()
	})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(ctx, stubJobs("a"), Options{Parallelism: 1, CellTimeout: time.Hour})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	var te *CellTimeoutError
	if errors.As(err, &te) {
		t.Error("sweep cancellation misreported as a cell timeout")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("cancelled cell dispatched %d times, want 1 (no retry)", got)
	}
}
