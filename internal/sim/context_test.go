package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fsim"
)

// TestRunContextMatchesRun pins Run as a pure wrapper: same inputs, same
// Result, field for field.
func TestRunContextMatchesRun(t *testing.T) {
	p := gzipProfile(t)
	opts := Options{Insns: 20_000, Verify: true}
	a, err := Run("DIE-IRB", core.BaseDIEIRB(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), "DIE-IRB", core.BaseDIEIRB(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Run and RunContext disagree on identical inputs")
	}
}

// TestRunContextPreCancelled returns the context error before any
// simulation work.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunContext(ctx, "SIE", core.BaseSIE(), gzipProfile(t), Options{Insns: 1_000_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("pre-cancelled run took %v", d)
	}
}

// TestRunContextCancelMidRun starts a run far larger than the test
// budget, cancels it shortly after, and requires a prompt return with
// the context's error.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, "SIE", core.BaseSIE(), gzipProfile(t), Options{Insns: 200_000_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A 200M-instruction run takes minutes; cancellation is checked
	// every simulated cycle, so the return must be near-immediate.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v to take effect", d)
	}
}

// TestSeedOption checks the three seed contracts: zero is byte-identical
// to the default, a fixed nonzero seed is reproducible, and different
// seeds generate genuinely different programs.
func TestSeedOption(t *testing.T) {
	p := gzipProfile(t)
	base, err := Run("SIE", core.BaseSIE(), p, Options{Insns: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run("SIE", core.BaseSIE(), p, Options{Insns: 20_000, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, zero) {
		t.Error("Seed: 0 changed the run")
	}
	s1, err := Run("SIE", core.BaseSIE(), p, Options{Insns: 20_000, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	s1again, err := Run("SIE", core.BaseSIE(), p, Options{Insns: 20_000, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s1again) {
		t.Error("same seed did not reproduce the run")
	}
	if s1.Core.Cycles == base.Core.Cycles && s1.IPC == base.IPC {
		t.Error("nonzero seed produced a run indistinguishable from the default")
	}
	// A reseeded workload must still pass verification: the oracle sees
	// the same perturbed program.
	if _, err := Run("DIE", core.BaseDIE(), p, Options{Insns: 20_000, Seed: 99, Verify: true}); err != nil {
		t.Errorf("verified run with seed failed: %v", err)
	}
}

// TestDivergenceError pins the structured error the verify oracle
// returns in place of the old panics: the message names the run and the
// divergent records, errors.As finds it through wrapping, and Unwrap
// exposes an underlying oracle failure.
func TestDivergenceError(t *testing.T) {
	div := &DivergenceError{
		Bench: "gzip", Config: "DIE-IRB", Seq: 42,
		Got:  fsim.Retired{Seq: 42, PC: 100, Result: 7},
		Want: fsim.Retired{Seq: 42, PC: 100, Result: 9},
	}
	msg := div.Error()
	for _, want := range []string{"gzip", "DIE-IRB", "seq 42", "diverged"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q lacks %q", msg, want)
		}
	}

	wrapped := fmt.Errorf("cell failed: %w", div)
	var got *DivergenceError
	if !errors.As(wrapped, &got) || got != div {
		t.Error("errors.As does not recover the DivergenceError through wrapping")
	}

	oerr := errors.New("oracle halted early")
	div = &DivergenceError{Bench: "mesa", Config: "SIE", Seq: 7, OracleErr: oerr}
	if !errors.Is(div, oerr) {
		t.Error("Unwrap does not expose the oracle error")
	}
	if msg := div.Error(); !strings.Contains(msg, "oracle") || !strings.Contains(msg, "halted early") {
		t.Errorf("oracle-failure message %q lacks the cause", msg)
	}
}
