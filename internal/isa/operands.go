package isa

// Static operand and control-flow metadata accessors. These answer, for a
// decoded instruction, the questions a static analyzer asks — which
// registers are read and written, where direct control transfers land, and
// whether execution can continue at pc+1 — without the caller re-deriving
// them from OpInfo flag combinations.

// SrcRegs returns the registers the instruction reads, in (src1, src2)
// order, and how many of the two slots are meaningful. ZeroReg appears
// like any other register; callers that care about its hardwired-zero
// semantics filter it themselves.
func (in Instr) SrcRegs() (regs [2]Reg, n int) {
	oi := in.Op.Info()
	if oi.UsesSrc1 {
		regs[n] = in.Src1
		n++
	}
	if oi.UsesSrc2 {
		regs[n] = in.Src2
		n++
	}
	return regs, n
}

// DestReg returns the register the instruction writes and whether it
// writes one at all. Writes to ZeroReg are architecturally discarded; this
// reports the encoded destination regardless.
func (in Instr) DestReg() (Reg, bool) {
	if !in.Op.Info().HasDest {
		return 0, false
	}
	return in.Dest, true
}

// StaticTarget returns the instruction-index target of a direct control
// transfer at pc, and whether the instruction has one. Indirect jumps
// (JALR) and non-control instructions report false.
func (in Instr) StaticTarget(pc uint64) (uint64, bool) {
	oi := in.Op.Info()
	if !oi.IsCtrl() || oi.IsIndirect {
		return 0, false
	}
	return uint64(int64(pc) + int64(in.Imm)), true
}

// FallsThrough reports whether execution can continue at pc+1 after this
// instruction: true for ordinary operations and not-taken conditional
// branches, false for unconditional transfers (jump, call, jalr) and HALT.
// A CALL does return to pc+1 eventually; CFG builders model that through
// the callee's return edges, not as an architectural fallthrough.
func (in Instr) FallsThrough() bool {
	oi := in.Op.Info()
	if in.Op == OpHalt {
		return false
	}
	return !oi.IsJump
}

// IsReturn reports whether the instruction is the conventional function
// return: a JALR through LinkReg that discards the new link value.
func (in Instr) IsReturn() bool {
	return in.Op == OpJalr && in.Src1 == LinkReg && in.Dest == ZeroReg
}

// EndsBlock reports whether the instruction terminates a basic block: any
// control transfer or HALT.
func (in Instr) EndsBlock() bool {
	return in.Op.Info().IsCtrl() || in.Op == OpHalt
}
